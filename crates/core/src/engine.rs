//! The capability engine: Tyche's isolation API (§3.2, §4.1).
//!
//! All monitor API calls funnel into [`CapEngine`] methods. The engine
//! validates every operation against the acting domain's capabilities
//! (the monitor "does not choose resources to allocate to a domain, but
//! rather validates allocation" — §3.5), updates the lineage tree and
//! reference counts, and appends [`Effect`]s for the platform backend.
//!
//! ## Operation summary
//!
//! | op | who may call | result |
//! |----|--------------|--------|
//! | [`create_domain`](CapEngine::create_domain) | any unsealed domain (sealed: needs `allow_child_domains`) | new child domain + transition capability |
//! | [`share`](CapEngine::share) | capability owner | child capability; both domains have access |
//! | [`grant`](CapEngine::grant) | capability owner | child capability; granter's access suspended |
//! | [`split`](CapEngine::split) | capability owner | two carved capabilities over the halves |
//! | [`revoke`](CapEngine::revoke) | granter or lineage ancestor owner | cascading revocation + clean-up effects |
//! | [`seal`](CapEngine::seal) | manager or self | freezes config, takes measurement |
//! | [`kill`](CapEngine::kill) | manager | revokes everything, retires the domain |
//! | [`can_enter`](CapEngine::can_enter) | transition-cap owner | validated entry point for the monitor to switch to |
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

use crate::capability::{CapKind, Capability};
use crate::domain::{Domain, DomainState, SealPolicy};
use crate::effect::Effect;
use crate::error::CapError;
use crate::ids::{CapId, DomainId, IdAllocator};
use crate::interval::IntervalTree;
use crate::refcount::{mem_refcount, RefCount};
use crate::resource::{MemRegion, Resource, Rights};
use crate::store::{RevokedLog, RevokedRecord, Store};
use crate::trace::{CapOpKind, EventKind, TraceSink};
use crate::RevocationPolicy;
use std::collections::{BTreeMap, BTreeSet};

/// Effects-buffer capacity retained across [`CapEngine::drain_effects`]
/// calls: enough to absorb a steady-state batch without reallocating,
/// small enough that a revoke storm's burst capacity is returned to the
/// allocator with the drained vector.
pub const EFFECTS_RETAIN: usize = 1024;

/// A resource entry as enumerated for attestation (§3.4): resource,
/// rights, sharing kind, and the current reference count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnumeratedResource {
    /// The capability id backing this entry.
    pub cap: CapId,
    /// The resource.
    pub resource: Resource,
    /// Rights held.
    pub rights: Rights,
    /// How the capability was derived.
    pub kind: CapKind,
    /// Reference count over the resource (max/min per byte for memory).
    pub refcount: RefCount,
}

/// The capability engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapEngine {
    /// Live domains, slab-backed and keyed by raw `DomainId` — `O(1)`
    /// lookup on every hypercall path, id-ordered iteration (see
    /// [`crate::store`]).
    domains: Store<Domain>,
    /// Live capabilities (active and suspended), slab-backed and keyed
    /// by raw `CapId`. Revoked capabilities leave **no tombstone** here;
    /// their lineage facts compact into `revoked`.
    caps: Store<Capability>,
    ids: IdAllocator,
    effects: Vec<Effect>,
    root: Option<DomainId>,
    /// Monotonic operation counter; stamps capability creation and seal
    /// times so the auditor can check seal-freeze invariants.
    op_counter: u64,
    /// Capability id → creation stamp.
    created_at: Store<u64>,
    /// Domain id → seal stamp.
    sealed_at: Store<u64>,
    /// Owner → capability ids (active and suspended). Every mutation path
    /// keeps this in lock-step with `caps`; in debug builds the indexed
    /// queries cross-check against a full scan.
    by_owner: Store<BTreeSet<CapId>>,
    /// Active memory capabilities as an augmented interval tree keyed
    /// `(region.start, cap)` → `(region.end, owner)`. Overlap queries
    /// prune by subtree `max_end` — `O(log n + k)` instead of scanning
    /// every interval left of the query.
    mem_index: IntervalTree,
    /// Non-memory resource → capability ids (active and suspended), keyed
    /// by `(type_tag, value)`. Backs `owns_core`/`owns_device`, the unit
    /// refcounts in `enumerate`, and the dangling-transition sweep in
    /// `kill`.
    res_index: BTreeMap<(u8, u64), BTreeSet<CapId>>,
    /// Set once a corruption hook hands out mutable internals: the
    /// indexes may be stale, so every query falls back to the scan path
    /// (corruption hooks exist only for mutation tests).
    indexes_poisoned: bool,
    /// Bumped on every mutation (see `tick()`) and by the corruption
    /// hooks. The monitor's fast-path cache and `SharedEngine`'s cached
    /// snapshot key their validity on this counter.
    generation: u64,
    /// Observability sink (disabled by default; installed by the boot
    /// path). Compares vacuously equal so engine equality — replay
    /// checks, the zero-perturbation gate — ignores what was recorded.
    trace: TraceSink,
    /// Packed side table of revoked-capability lineage records (bounded;
    /// compares vacuously equal like `trace`). Revocation compacts the
    /// dead node's lineage facts here instead of leaving a tombstone in
    /// `caps`.
    revoked: RevokedLog,
}

impl CapEngine {
    /// Creates an empty engine (no domains yet).
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&mut self) -> u64 {
        self.op_counter += 1;
        // Every mutation is also a new generation: snapshot readers
        // (SharedEngine) key staleness on `generation()`, so it must move
        // on *every* state change, not just the transition-invalidating
        // ones. The monitor's fast-path cache only over-invalidates.
        self.generation += 1;
        self.trace.emit_engine(EventKind::GenBump {
            gen: self.generation,
        });
        self.op_counter
    }

    /// Installs the machine-wide trace sink (done once by the boot
    /// path). The default sink is disabled and drops every emission.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// The engine's trace sink handle.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The root (initial) domain, if created.
    pub fn root(&self) -> Option<DomainId> {
        self.root
    }

    /// Looks up a domain.
    pub fn domain(&self, id: DomainId) -> Option<&Domain> {
        self.domains.get(id.0)
    }

    /// Looks up a capability.
    pub fn cap(&self, id: CapId) -> Option<&Capability> {
        self.caps.get(id.0)
    }

    /// Iterates all live domains.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Iterates all capabilities (active and suspended).
    pub fn caps(&self) -> impl Iterator<Item = &Capability> {
        self.caps.values()
    }

    /// All capabilities owned by `domain`.
    pub fn caps_of(&self, domain: DomainId) -> Vec<&Capability> {
        if self.indexes_poisoned {
            return self.caps_of_scan(domain);
        }
        let out: Vec<&Capability> = self
            .by_owner
            .get(domain.0)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.caps.get(id.0))
            .collect();
        #[cfg(any(debug_assertions, feature = "paranoid-checks"))]
        {
            let scan: Vec<CapId> = self.caps_of_scan(domain).iter().map(|c| c.id).collect();
            let indexed: Vec<CapId> = out.iter().map(|c| c.id).collect();
            assert_eq!(indexed, scan, "owner index diverged from scan for {domain}");
        }
        out
    }

    /// Scan-based reference implementation of [`caps_of`](Self::caps_of):
    /// walks every capability. Kept as the differential-check oracle and
    /// the benchmark "before" path.
    #[doc(hidden)]
    pub fn caps_of_scan(&self, domain: DomainId) -> Vec<&Capability> {
        self.caps.values().filter(|c| c.owner == domain).collect()
    }

    /// Engine generation: bumped on every mutation (any `tick()`ed
    /// operation plus the corruption hooks), so it moves whenever a
    /// previously-validated transition could have become invalid *and*
    /// whenever a cached snapshot of the whole engine could be stale.
    /// Callers caching validation results or snapshots compare this
    /// before reuse.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Creation stamp of a capability (for the auditor).
    pub fn cap_created_at(&self, cap: CapId) -> Option<u64> {
        self.created_at.get(cap.0).copied()
    }

    /// Seal stamp of a domain (for the auditor).
    pub fn domain_sealed_at(&self, domain: DomainId) -> Option<u64> {
        self.sealed_at.get(domain.0).copied()
    }

    // ------------------------------------------------------------------
    // Corruption hooks (mutation tests only)
    //
    // The engine's public operations refuse to create unsound states, so
    // the auditor's negative tests need a way to corrupt internals
    // directly. Hidden from docs; never call these outside tests.
    // ------------------------------------------------------------------

    /// Test-only mutable access to a capability record. Poisons the
    /// secondary indexes: the caller can rewrite owner/resource/active
    /// behind their back, so queries fall back to full scans.
    #[doc(hidden)]
    pub fn corrupt_cap(&mut self, cap: CapId) -> Option<&mut Capability> {
        self.indexes_poisoned = true;
        self.generation += 1;
        self.trace.emit_engine(EventKind::GenBump {
            gen: self.generation,
        });
        self.caps.get_mut(cap.0)
    }

    /// Test-only mutable access to a domain record. Poisons the indexes
    /// and invalidates cached transition validations.
    #[doc(hidden)]
    pub fn corrupt_domain(&mut self, domain: DomainId) -> Option<&mut Domain> {
        self.indexes_poisoned = true;
        self.generation += 1;
        self.trace.emit_engine(EventKind::GenBump {
            gen: self.generation,
        });
        self.domains.get_mut(domain.0)
    }

    /// Test-only override of the mutation generation (including the
    /// matching [`EventKind::GenBump`] emission, so the runtime-verification
    /// seqlock checker can observe the corruption in the trace).
    #[doc(hidden)]
    pub fn corrupt_generation(&mut self, gen: u64) {
        self.generation = gen;
        self.trace.emit_engine(EventKind::GenBump { gen });
    }

    /// Test-only override of a capability's creation stamp.
    #[doc(hidden)]
    pub fn corrupt_created_at(&mut self, cap: CapId, stamp: u64) {
        self.created_at.insert(cap.0, stamp);
    }

    /// Test-only override of a domain's seal stamp.
    #[doc(hidden)]
    pub fn corrupt_sealed_at(&mut self, domain: DomainId, stamp: u64) {
        self.sealed_at.insert(domain.0, stamp);
    }

    /// Drains the pending backend effects in emission order.
    ///
    /// The replacement buffer is pre-reserved to the drained demand,
    /// capped at [`EFFECTS_RETAIN`]: steady-state callers skip the
    /// first reallocations of the next batch, while a one-off
    /// 1M-domain revoke storm does not leave a permanently ballooned
    /// buffer behind (the storm's capacity leaves with the drained
    /// `Vec`, which the caller drops).
    pub fn drain_effects(&mut self) -> Vec<Effect> {
        let drained = std::mem::take(&mut self.effects);
        self.effects = Vec::with_capacity(drained.len().min(EFFECTS_RETAIN));
        drained
    }

    /// Number of pending effects (without draining).
    pub fn pending_effects(&self) -> usize {
        self.effects.len()
    }

    /// Current capacity of the internal effects buffer (for the
    /// capacity-accounting tests and the scale bench's footprint row).
    pub fn effects_capacity(&self) -> usize {
        self.effects.capacity()
    }

    /// The packed side table of revoked-capability lineage records.
    pub fn revoked_log(&self) -> &RevokedLog {
        &self.revoked
    }

    /// Retained heap footprint of the engine's storage layer: the slab
    /// stores, the interval index, the unit-resource index, the effects
    /// buffer, and the revoked-lineage table. Capacity-based, so it
    /// reports what the allocator actually holds; per-value heap (e.g.
    /// a capability's `children` set) is estimated from live counts.
    pub fn storage_bytes(&self) -> usize {
        let children: usize = self
            .caps
            .values()
            .map(|c| c.children.len() * std::mem::size_of::<CapId>() * 3 / 2)
            .sum();
        // BTreeMap/BTreeSet don't expose capacity; estimate nodes at
        // ~1.5x entry payload, the textbook 2/3 B-tree fill factor.
        let res_entries: usize = self.res_index.values().map(|s| s.len()).sum();
        let res_bytes = (self.res_index.len() * 24 + res_entries * 8) * 3 / 2;
        let owner_entries: usize = self.by_owner.values().map(|s| s.len()).sum();
        let owner_bytes = owner_entries * 8 * 3 / 2;
        self.domains.storage_bytes()
            + self.caps.storage_bytes()
            + self.created_at.storage_bytes()
            + self.sealed_at.storage_bytes()
            + self.by_owner.storage_bytes()
            + self.mem_index.storage_bytes()
            + self.effects.capacity() * std::mem::size_of::<Effect>()
            + self.revoked.storage_bytes()
            + children
            + res_bytes
            + owner_bytes
    }

    // ------------------------------------------------------------------
    // Domain lifecycle
    // ------------------------------------------------------------------

    /// Creates the root (initial) domain — the unmodified OS the monitor
    /// boots into (§4). Callable once.
    ///
    /// # Panics
    ///
    /// Panics when called twice; the boot path runs once by construction.
    pub fn create_root_domain(&mut self) -> DomainId {
        assert!(self.root.is_none(), "root domain already exists");
        let id = DomainId(self.ids.next());
        self.domains.insert(
            id.0,
            Domain {
                id,
                manager: None,
                state: DomainState::Configuring,
                seal_policy: SealPolicy::nestable(),
                entry: None,
                measurement: None,
                content_measurements: Vec::new(),
                quarantined: false,
            },
        );
        self.root = Some(id);
        self.effects.push(Effect::DomainCreated { domain: id });
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::CreateDomain,
            actor: id.0,
            subject: id.0,
            aux: 0,
        });
        id
    }

    /// Endows the root domain with a boot-time resource (all RAM, each CPU
    /// core, each device). Only the root domain can be endowed; everything
    /// else must obtain resources through `share`/`grant`.
    pub fn endow(
        &mut self,
        domain: DomainId,
        resource: Resource,
        rights: Rights,
    ) -> Result<CapId, CapError> {
        if Some(domain) != self.root {
            return Err(CapError::RootDomain);
        }
        let dom = self
            .domains
            .get(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        let id = CapId(self.ids.next());
        let cap = Capability {
            id,
            owner: domain,
            granter: domain,
            resource,
            rights,
            kind: CapKind::Root,
            parent: None,
            children: BTreeSet::new(),
            policy: RevocationPolicy::NONE,
            active: true,
        };
        self.emit_gain(&cap);
        self.index_insert(&cap);
        self.caps.insert(id.0, cap);
        let t = self.tick();
        self.created_at.insert(id.0, t);
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::Endow,
            actor: domain.0,
            subject: id.0,
            aux: 0,
        });
        Ok(id)
    }

    /// Creates a new (empty) trust domain managed by `manager`, returning
    /// the new domain id and a transition capability into it.
    ///
    /// Any domain may create domains — this is the paper's core
    /// democratization claim; a sealed domain needs
    /// [`SealPolicy::allow_child_domains`].
    pub fn create_domain(&mut self, manager: DomainId) -> Result<(DomainId, CapId), CapError> {
        let m = self
            .domains
            .get(manager.0)
            .ok_or(CapError::NoSuchDomain(manager))?;
        if !m.is_alive() {
            return Err(CapError::NoSuchDomain(manager));
        }
        if m.is_sealed() && !m.seal_policy.allow_child_domains {
            return Err(CapError::SealedImmutable(manager));
        }
        let id = DomainId(self.ids.next());
        self.domains.insert(
            id.0,
            Domain {
                id,
                manager: Some(manager),
                state: DomainState::Configuring,
                seal_policy: SealPolicy::nestable(),
                entry: None,
                measurement: None,
                content_measurements: Vec::new(),
                quarantined: false,
            },
        );
        self.effects.push(Effect::DomainCreated { domain: id });
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::CreateDomain,
            actor: manager.0,
            subject: id.0,
            aux: 0,
        });
        let tcap = self.make_transition(manager, id, RevocationPolicy::NONE)?;
        Ok((id, tcap))
    }

    /// Sets the fixed entry point of an unsealed domain. The manager (or
    /// the domain itself, pre-seal) may call this.
    pub fn set_entry(
        &mut self,
        actor: DomainId,
        domain: DomainId,
        entry: u64,
    ) -> Result<(), CapError> {
        self.check_manager(actor, domain)?;
        let dom = self
            .domains
            .get_mut(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if dom.is_sealed() {
            return Err(CapError::SealedImmutable(domain));
        }
        dom.entry = Some(entry);
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::SetEntry,
            actor: actor.0,
            subject: domain.0,
            aux: entry,
        });
        Ok(())
    }

    /// Records a content measurement for part of the domain's initial
    /// memory. The monitor calls this while loading the domain image;
    /// the digests become part of the seal-time measurement (§3.2:
    /// "a hash of domain configurations and selected initial resources").
    pub fn record_content(
        &mut self,
        actor: DomainId,
        domain: DomainId,
        region: MemRegion,
        digest: tyche_crypto::Digest,
    ) -> Result<(), CapError> {
        self.check_manager(actor, domain)?;
        let dom = self
            .domains
            .get_mut(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if dom.is_sealed() {
            return Err(CapError::SealedImmutable(domain));
        }
        dom.content_measurements
            .push((region.start, region.end, digest));
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::RecordContent,
            actor: actor.0,
            subject: domain.0,
            aux: region.start,
        });
        Ok(())
    }

    /// Seals `domain`: freezes its resource configuration per `policy`,
    /// computes its measurement, and makes it enterable.
    ///
    /// Requires an entry point (domains have fixed entry points, §3.1).
    pub fn seal(
        &mut self,
        actor: DomainId,
        domain: DomainId,
        policy: SealPolicy,
    ) -> Result<tyche_crypto::Digest, CapError> {
        self.check_manager(actor, domain)?;
        {
            let dom = self
                .domains
                .get(domain.0)
                .ok_or(CapError::NoSuchDomain(domain))?;
            if dom.is_sealed() {
                return Err(CapError::SealedImmutable(domain));
            }
            if dom.entry.is_none() {
                return Err(CapError::NoEntryPoint(domain));
            }
        }
        let measurement = self.measure_config(domain, policy);
        let t = self.tick();
        let dom = self.domains.get_mut(domain.0).expect("checked above");
        dom.state = DomainState::Sealed;
        dom.seal_policy = policy;
        dom.measurement = Some(measurement);
        self.sealed_at.insert(domain.0, t);
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::Seal,
            actor: actor.0,
            subject: domain.0,
            aux: 0,
        });
        Ok(measurement)
    }

    /// Kills `domain`: cascading-revokes every capability it owns (and
    /// therefore everything it shared onward), emits clean-up effects, and
    /// retires the id. Only the manager may kill a domain.
    pub fn kill(&mut self, actor: DomainId, domain: DomainId) -> Result<(), CapError> {
        let dom = self
            .domains
            .get(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        if dom.manager != Some(actor) {
            return Err(CapError::NotManager {
                target: domain,
                actor,
            });
        }
        // Revoke every capability owned by the dying domain. Collect ids
        // first; each revocation may cascade into caps owned by others.
        let owned: Vec<CapId> = if self.indexes_poisoned {
            self.caps
                .values()
                .filter(|c| c.owner == domain)
                .map(|c| c.id)
                .collect()
        } else {
            self.by_owner
                .get(domain.0)
                .into_iter()
                .flat_map(|ids| ids.iter().copied())
                .collect()
        };
        for cap in owned {
            if self.caps.contains(cap.0) {
                self.revoke_subtree(cap);
            }
        }
        // Also revoke transition capabilities *into* the dead domain held
        // by others — they dangle otherwise.
        let dangling: Vec<CapId> = if self.indexes_poisoned {
            self.caps
                .values()
                .filter(|c| matches!(c.resource, Resource::Transition(t) if t == domain))
                .map(|c| c.id)
                .collect()
        } else {
            self.res_index
                .get(&(3, domain.0))
                .into_iter()
                .flat_map(|ids| ids.iter().copied())
                .collect()
        };
        for cap in dangling {
            if self.caps.contains(cap.0) {
                self.revoke_subtree(cap);
            }
        }
        let dom = self.domains.get_mut(domain.0).expect("checked above");
        dom.state = DomainState::Dead;
        self.effects.push(Effect::DomainKilled { domain });
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::Kill,
            actor: actor.0,
            subject: domain.0,
            aux: 0,
        });
        Ok(())
    }

    /// Quarantines `domain` after a hardware fault left its translation
    /// state untrusted: the domain stays alive (killable, enumerable) but
    /// is never enterable again. Every active transition capability into
    /// the domain is deactivated so the invariant "no active transition
    /// targets a quarantined domain" holds immediately; the auditor
    /// enforces it from then on. Idempotent on already-quarantined
    /// domains. No hardware effects are emitted — the caller (the
    /// monitor) owns whatever backend state triggered the quarantine.
    pub fn quarantine(&mut self, domain: DomainId) -> Result<(), CapError> {
        let dom = self
            .domains
            .get_mut(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        let already = dom.quarantined;
        dom.quarantined = true;
        if !already {
            let transitions: Vec<CapId> = if self.indexes_poisoned {
                self.caps
                    .values()
                    .filter(|c| matches!(c.resource, Resource::Transition(t) if t == domain))
                    .map(|c| c.id)
                    .collect()
            } else {
                self.res_index
                    .get(&(3, domain.0))
                    .into_iter()
                    .flat_map(|ids| ids.iter().copied())
                    .collect()
            };
            for cap in transitions {
                if self.caps.get(cap.0).map(|c| c.active).unwrap_or(false) {
                    self.set_cap_active(cap, false);
                }
            }
        }
        // Cached fast-path transition validations are stale either way.
        self.tick();
        if !already {
            self.trace.emit_engine(EventKind::Quarantine { domain: domain.0 });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Capability operations
    // ------------------------------------------------------------------

    /// Shares (a subrange of) a capability with `target`: both domains end
    /// up with access. Returns the child capability owned by `target`.
    pub fn share(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        self.derive(actor, cap, target, sub, rights, policy, CapKind::Shared)
    }

    /// Grants a whole capability to `target`: exclusive, revocable
    /// transfer. The granter's capability is suspended until revocation.
    /// To grant part of a memory region, [`split`](CapEngine::split)
    /// first.
    pub fn grant(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        // A partial grant would leave the granter with fragmented access;
        // the engine keeps grant whole-capability and offers split().
        if let Some(s) = sub {
            let c = self.caps.get(cap.0).ok_or(CapError::NoSuchCap(cap))?;
            match c.resource.as_mem() {
                Some(region) if region == s => {}
                Some(_) => return Err(CapError::OutOfRange),
                None => return Err(CapError::SubrangeOnNonMemory),
            }
        }
        self.derive(actor, cap, target, None, rights, policy, CapKind::Granted)
    }

    /// Drives [`derive`](Self::derive) with an arbitrary kind, including
    /// the `Root`/`Carved` kinds the public API can never produce.
    /// Regression hook for the panic that used to sit at the end of
    /// `derive`; a refused kind must leave the engine untouched.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn derive_raw(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
        kind: CapKind,
    ) -> Result<CapId, CapError> {
        self.derive(actor, cap, target, sub, rights, policy, kind)
    }

    /// Splits an active memory capability at address `at`, producing two
    /// carved capabilities over `[start, at)` and `[at, end)`. The original
    /// capability is consumed (suspended with two carved children).
    pub fn split(
        &mut self,
        actor: DomainId,
        cap: CapId,
        at: u64,
    ) -> Result<(CapId, CapId), CapError> {
        let c = self.caps.get(cap.0).ok_or(CapError::NoSuchCap(cap))?;
        if c.owner != actor {
            return Err(CapError::NotOwner { cap, actor });
        }
        if !c.active {
            return Err(CapError::Inactive(cap));
        }
        let region = c.resource.as_mem().ok_or(CapError::WrongResourceType)?;
        if at <= region.start || at >= region.end {
            return Err(CapError::OutOfRange);
        }
        let (rights, policy) = (c.rights, c.policy);
        let lo = self.insert_child(
            cap,
            actor,
            actor,
            Resource::Memory(MemRegion::new(region.start, at)),
            rights,
            CapKind::Carved,
            policy,
        )?;
        let hi = self.insert_child(
            cap,
            actor,
            actor,
            Resource::Memory(MemRegion::new(at, region.end)),
            rights,
            CapKind::Carved,
            policy,
        )?;
        // The parent is consumed: its coverage is now represented by the
        // carved pieces. No hardware effect — the owner's access is
        // unchanged.
        self.set_cap_active(cap, false);
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::Split,
            actor: actor.0,
            subject: cap.0,
            aux: at,
        });
        Ok((lo, hi))
    }

    /// Revokes `cap` and, cascading, every capability derived from it.
    ///
    /// The caller must be the capability's granter or the owner of an
    /// ancestor in its lineage (ancestors can always reclaim). Clean-up
    /// effects follow each revoked capability's policy. Termination is
    /// guaranteed even under circular domain-level sharing because lineage
    /// is a tree.
    pub fn revoke(&mut self, actor: DomainId, cap: CapId) -> Result<(), CapError> {
        let c = self.caps.get(cap.0).ok_or(CapError::NoSuchCap(cap))?;
        // The granter may always take a capability back; this also covers
        // owners revoking their own carved pieces.
        let mut authorized = c.granter == actor;
        if !authorized {
            // Walk up the lineage: any ancestor owner may revoke. The walk
            // is checked and hop-bounded — a dangling parent id or a
            // parent cycle means the lineage tree is corrupt, and the TCB
            // must refuse rather than panic or loop.
            let mut hops = 0usize;
            let mut cur = c.parent;
            while let Some(p) = cur {
                hops += 1;
                if hops > self.caps.len() {
                    return Err(CapError::NoSuchCap(p));
                }
                let pc = self.caps.get(p.0).ok_or(CapError::NoSuchCap(p))?;
                if pc.owner == actor {
                    authorized = true;
                    break;
                }
                cur = pc.parent;
            }
        }
        if !authorized {
            return Err(CapError::NotGranter { cap, actor });
        }
        self.revoke_subtree(cap);
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::Revoke,
            actor: actor.0,
            subject: cap.0,
            aux: 0,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transitions
    // ------------------------------------------------------------------

    /// Creates a transition capability into `target`, owned by `actor`.
    /// `actor` must manage `target` (or be `target`). The policy's flush
    /// flags are applied by the monitor on every transition through this
    /// capability (§4.1 side-channel mitigation).
    pub fn make_transition(
        &mut self,
        actor: DomainId,
        target: DomainId,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        if actor != target {
            self.check_manager(actor, target)?;
        }
        let t = self
            .domains
            .get(target.0)
            .ok_or(CapError::NoSuchDomain(target))?;
        if !t.is_alive() {
            return Err(CapError::NoSuchDomain(target));
        }
        // A new transition capability into a quarantined domain would be
        // born violating the quarantine invariant (audit I7).
        if t.is_quarantined() {
            return Err(CapError::Quarantined(target));
        }
        let a = self
            .domains
            .get(actor.0)
            .ok_or(CapError::NoSuchDomain(actor))?;
        if a.is_sealed() && !a.seal_policy.allow_child_domains {
            return Err(CapError::SealedImmutable(actor));
        }
        let id = CapId(self.ids.next());
        let capability = Capability {
            id,
            owner: actor,
            granter: actor,
            resource: Resource::Transition(target),
            rights: Rights::USE,
            kind: CapKind::Root,
            parent: None,
            children: BTreeSet::new(),
            policy,
            active: true,
        };
        self.index_insert(&capability);
        self.caps.insert(id.0, capability);
        let t = self.tick();
        self.created_at.insert(id.0, t);
        self.trace.emit_engine(EventKind::CapOp {
            op: CapOpKind::Transition,
            actor: actor.0,
            subject: id.0,
            aux: target.0,
        });
        Ok(id)
    }

    /// Validates a domain transition: `actor`, running on CPU `core`,
    /// invokes transition capability `cap`. On success returns the target
    /// domain, its fixed entry point, and the flush policy the monitor
    /// must apply.
    ///
    /// Checks (§3.1): the monitor mediates all control transfers; domains
    /// have fixed entry points; domains only run on cores in their
    /// resource configuration.
    pub fn can_enter(
        &self,
        actor: DomainId,
        cap: CapId,
        core: usize,
    ) -> Result<(DomainId, u64, RevocationPolicy), CapError> {
        let c = self.caps.get(cap.0).ok_or(CapError::NoSuchCap(cap))?;
        if c.owner != actor {
            return Err(CapError::NotOwner { cap, actor });
        }
        if !c.active {
            return Err(CapError::Inactive(cap));
        }
        let target = match c.resource {
            Resource::Transition(t) => t,
            _ => return Err(CapError::WrongResourceType),
        };
        if !c.rights.can_use() {
            return Err(CapError::RightsEscalation);
        }
        let dom = self
            .domains
            .get(target.0)
            .ok_or(CapError::NoSuchDomain(target))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(target));
        }
        if dom.is_quarantined() {
            return Err(CapError::Quarantined(target));
        }
        if !dom.is_sealed() {
            return Err(CapError::NotSealed(target));
        }
        let entry = dom.entry.ok_or(CapError::NoEntryPoint(target))?;
        if !self.owns_core(target, core) {
            return Err(CapError::CoreNotOwned {
                domain: target,
                core,
            });
        }
        Ok((target, entry, c.policy))
    }

    /// True when `domain` holds an active capability for CPU `core`.
    pub fn owns_core(&self, domain: DomainId, core: usize) -> bool {
        if self.indexes_poisoned {
            return self.owns_core_scan(domain, core);
        }
        let out = self
            .res_index
            .get(&(1, core as u64))
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.caps.get(id.0))
            .any(|c| c.owner == domain && c.active && c.rights.can_use());
        #[cfg(any(debug_assertions, feature = "paranoid-checks"))]
        assert_eq!(
            out,
            self.owns_core_scan(domain, core),
            "core index diverged from scan"
        );
        out
    }

    /// Scan-based reference implementation of [`owns_core`](Self::owns_core).
    #[doc(hidden)]
    pub fn owns_core_scan(&self, domain: DomainId, core: usize) -> bool {
        self.caps.values().any(|c| {
            c.owner == domain
                && c.active
                && c.rights.can_use()
                && matches!(c.resource, Resource::CpuCore(n) if n == core)
        })
    }

    /// True when `domain` holds an active capability for `device`.
    pub fn owns_device(&self, domain: DomainId, device: u16) -> bool {
        if self.indexes_poisoned {
            return self.owns_device_scan(domain, device);
        }
        let out = self
            .res_index
            .get(&(2, u64::from(device)))
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.caps.get(id.0))
            .any(|c| c.owner == domain && c.active && c.rights.can_use());
        #[cfg(any(debug_assertions, feature = "paranoid-checks"))]
        assert_eq!(
            out,
            self.owns_device_scan(domain, device),
            "device index diverged from scan"
        );
        out
    }

    /// Scan-based reference implementation of
    /// [`owns_device`](Self::owns_device).
    #[doc(hidden)]
    pub fn owns_device_scan(&self, domain: DomainId, device: u16) -> bool {
        self.caps.values().any(|c| {
            c.owner == domain
                && c.active
                && c.rights.can_use()
                && matches!(c.resource, Resource::Device(d) if d == device)
        })
    }

    // ------------------------------------------------------------------
    // Reference counts & enumeration
    // ------------------------------------------------------------------

    /// All active `(domain, region)` memory coverage pairs.
    pub fn active_mem_coverage(&self) -> Vec<(DomainId, MemRegion)> {
        if self.indexes_poisoned {
            return self.active_mem_coverage_scan();
        }
        let out: Vec<(DomainId, MemRegion)> = self
            .mem_index
            .iter()
            .map(|e| (e.owner, MemRegion::new(e.start, e.end)))
            .collect();
        #[cfg(any(debug_assertions, feature = "paranoid-checks"))]
        {
            let key = |e: &(DomainId, MemRegion)| (e.0, e.1.start, e.1.end);
            let mut a = out.clone();
            let mut b = self.active_mem_coverage_scan();
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "memory index diverged from scan");
        }
        out
    }

    /// Scan-based reference implementation of
    /// [`active_mem_coverage`](Self::active_mem_coverage).
    #[doc(hidden)]
    pub fn active_mem_coverage_scan(&self) -> Vec<(DomainId, MemRegion)> {
        self.caps
            .values()
            .filter(|c| c.active)
            .filter_map(|c| c.resource.as_mem().map(|r| (c.owner, r)))
            .collect()
    }

    /// Full reference-count query over a memory range (Figure 4). Visits
    /// only capabilities whose interval can overlap `region` (via the
    /// `(start, cap)`-keyed index), not every capability in the system.
    pub fn refcount_mem_full(&self, region: MemRegion) -> RefCount {
        if self.indexes_poisoned {
            return self.refcount_mem_full_scan(region);
        }
        // The interval tree prunes subtrees by `max_end`, visiting only
        // intervals that actually overlap `region` (plus the O(log n)
        // search spine). `mem_refcount` ignores non-overlapping entries,
        // so the tighter candidate set is sound.
        let coverage: Vec<(DomainId, MemRegion)> = self
            .mem_index
            .overlapping(region.start, region.end)
            .into_iter()
            .map(|e| (e.owner, MemRegion::new(e.start, e.end)))
            .collect();
        let out = mem_refcount(&coverage, region);
        #[cfg(any(debug_assertions, feature = "paranoid-checks"))]
        assert_eq!(
            out,
            self.refcount_mem_full_scan(region),
            "interval index diverged from scan"
        );
        out
    }

    /// Scan-based reference implementation of
    /// [`refcount_mem_full`](Self::refcount_mem_full).
    #[doc(hidden)]
    pub fn refcount_mem_full_scan(&self, region: MemRegion) -> RefCount {
        mem_refcount(&self.active_mem_coverage_scan(), region)
    }

    /// Maximum per-byte reference count over a memory range.
    pub fn refcount_mem(&self, region: MemRegion) -> usize {
        self.refcount_mem_full(region).max
    }

    /// Enumerates `domain`'s active resources with rights and reference
    /// counts — the attestation view (§3.4).
    pub fn enumerate(&self, domain: DomainId) -> Result<Vec<EnumeratedResource>, CapError> {
        if self.indexes_poisoned {
            return self.enumerate_impl(domain, false);
        }
        let out = self.enumerate_impl(domain, true)?;
        #[cfg(any(debug_assertions, feature = "paranoid-checks"))]
        {
            let scan = self.enumerate_impl(domain, false)?;
            assert_eq!(out, scan, "enumeration index diverged from scan");
        }
        Ok(out)
    }

    /// Scan-based reference implementation of
    /// [`enumerate`](Self::enumerate).
    #[doc(hidden)]
    pub fn enumerate_scan(&self, domain: DomainId) -> Result<Vec<EnumeratedResource>, CapError> {
        self.enumerate_impl(domain, false)
    }

    fn enumerate_impl(
        &self,
        domain: DomainId,
        use_index: bool,
    ) -> Result<Vec<EnumeratedResource>, CapError> {
        let dom = self
            .domains
            .get(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        // The scan twin prices refcounts against the full coverage list;
        // the indexed path answers each one from a pruned overlap query
        // instead, so enumerating one tenant stays O(own · log n) no
        // matter how many unrelated domains are resident.
        let coverage = if use_index {
            Vec::new()
        } else {
            self.active_mem_coverage_scan()
        };
        let own: Vec<&Capability> = if use_index {
            self.by_owner
                .get(domain.0)
                .into_iter()
                .flat_map(|ids| ids.iter())
                .filter_map(|id| self.caps.get(id.0))
                .filter(|c| c.active)
                .collect()
        } else {
            self.caps
                .values()
                .filter(|c| c.owner == domain && c.active)
                .collect()
        };
        let mut out: Vec<EnumeratedResource> = own
            .into_iter()
            .map(|c| {
                let refcount = match c.resource {
                    Resource::Memory(r) if use_index => {
                        let local: Vec<(DomainId, MemRegion)> = self
                            .mem_index
                            .overlapping(r.start, r.end)
                            .into_iter()
                            .map(|e| (e.owner, MemRegion::new(e.start, e.end)))
                            .collect();
                        mem_refcount(&local, r)
                    }
                    Resource::Memory(r) => mem_refcount(&coverage, r),
                    Resource::Transition(_) => RefCount { max: 1, min: 1 },
                    _ => {
                        let n = self.unit_owner_count(c.resource, use_index);
                        RefCount { max: n, min: n }
                    }
                };
                EnumeratedResource {
                    cap: c.id,
                    resource: c.resource,
                    rights: c.rights,
                    kind: c.kind,
                    refcount,
                }
            })
            .collect();
        out.sort_by_key(|e| e.cap);
        Ok(out)
    }

    /// Reference count of a unit (core/device/interrupt) resource:
    /// distinct owners holding an active capability over it.
    fn unit_owner_count(&self, resource: Resource, use_index: bool) -> usize {
        let owners: Vec<DomainId> = if use_index {
            Self::res_key(&resource)
                .and_then(|key| self.res_index.get(&key))
                .into_iter()
                .flat_map(|ids| ids.iter())
                .filter_map(|id| self.caps.get(id.0))
                .filter(|k| k.active)
                .map(|k| k.owner)
                .collect()
        } else {
            self.caps
                .values()
                .filter(|k| k.active && k.resource == resource)
                .map(|k| k.owner)
                .collect()
        };
        crate::refcount::unit_refcount(owners)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Index key for non-memory resources: `(type_tag, value)`.
    fn res_key(resource: &Resource) -> Option<(u8, u64)> {
        match resource {
            Resource::Memory(_) => None,
            Resource::CpuCore(n) => Some((1, *n as u64)),
            Resource::Device(d) => Some((2, u64::from(*d))),
            Resource::Transition(t) => Some((3, t.0)),
            Resource::Interrupt(v) => Some((4, u64::from(*v))),
        }
    }

    /// Registers a capability in the secondary indexes. Must be called
    /// for every capability inserted into `caps`.
    fn index_insert(&mut self, cap: &Capability) {
        if let Some(ids) = self.by_owner.get_mut(cap.owner.0) {
            ids.insert(cap.id);
        } else {
            self.by_owner
                .insert(cap.owner.0, BTreeSet::from([cap.id]));
        }
        if let Some(key) = Self::res_key(&cap.resource) {
            self.res_index.entry(key).or_default().insert(cap.id);
        }
        if cap.active {
            if let Some(r) = cap.resource.as_mem() {
                self.mem_index.insert(r.start, cap.id, r.end, cap.owner);
            }
        }
    }

    /// Removes a capability from the secondary indexes. Must be called
    /// for every capability removed from `caps`.
    fn index_remove(&mut self, cap: &Capability) {
        let drained = if let Some(ids) = self.by_owner.get_mut(cap.owner.0) {
            ids.remove(&cap.id);
            ids.is_empty()
        } else {
            false
        };
        if drained {
            self.by_owner.remove(cap.owner.0);
        }
        if let Some(key) = Self::res_key(&cap.resource) {
            if let Some(ids) = self.res_index.get_mut(&key) {
                ids.remove(&cap.id);
                if ids.is_empty() {
                    self.res_index.remove(&key);
                }
            }
        }
        if let Some(r) = cap.resource.as_mem() {
            self.mem_index.remove(r.start, cap.id);
        }
    }

    /// Flips a capability's `active` flag, keeping the active-memory
    /// index in lock-step. The only two places `active` changes are
    /// suspension (grant/split) and reactivation (revocation of the
    /// suspending children) — both funnel through here.
    fn set_cap_active(&mut self, id: CapId, active: bool) {
        if let Some(c) = self.caps.get_mut(id.0) {
            c.active = active;
            let (resource, owner) = (c.resource, c.owner);
            if let Some(r) = resource.as_mem() {
                if active {
                    self.mem_index.insert(r.start, id, r.end, owner);
                } else {
                    self.mem_index.remove(r.start, id);
                }
            }
        }
    }

    /// Manager check: `actor` manages `domain` (directly) or is the
    /// domain itself while unsealed.
    fn check_manager(&self, actor: DomainId, domain: DomainId) -> Result<(), CapError> {
        let dom = self
            .domains
            .get(domain.0)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        if dom.manager == Some(actor) || (actor == domain && !dom.is_sealed()) {
            Ok(())
        } else {
            Err(CapError::NotManager {
                target: domain,
                actor,
            })
        }
    }

    /// Shared validation + node creation for share/grant.
    #[allow(clippy::too_many_arguments)]
    fn derive(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
        kind: CapKind,
    ) -> Result<CapId, CapError> {
        // Only shares and grants derive; a `Root` or `Carved` kind here
        // would corrupt the lineage bookkeeping. Validated before any
        // mutation, so a bad request leaves the engine untouched (this
        // used to be an `unreachable!` *after* the child was inserted).
        if !matches!(kind, CapKind::Shared | CapKind::Granted) {
            return Err(CapError::InvalidDerivation);
        }
        let c = self.caps.get(cap.0).ok_or(CapError::NoSuchCap(cap))?;
        if c.owner != actor {
            return Err(CapError::NotOwner { cap, actor });
        }
        if !c.active {
            return Err(CapError::Inactive(cap));
        }
        if !rights.subset_of(&c.rights) {
            return Err(CapError::RightsEscalation);
        }
        let actor_dom = self
            .domains
            .get(actor.0)
            .ok_or(CapError::NoSuchDomain(actor))?;
        if actor_dom.is_sealed() && !actor_dom.seal_policy.allow_outward_sharing {
            return Err(CapError::ActorSealed(actor));
        }
        let target_dom = self
            .domains
            .get(target.0)
            .ok_or(CapError::NoSuchDomain(target))?;
        if !target_dom.is_alive() {
            return Err(CapError::NoSuchDomain(target));
        }
        // Sealing freezes *incoming* resources unconditionally (§3.1).
        if target_dom.is_sealed() && target != actor {
            return Err(CapError::TargetSealed(target));
        }
        let resource = match (c.resource, sub) {
            (Resource::Memory(region), Some(s)) => {
                if !region.contains(&s) {
                    return Err(CapError::OutOfRange);
                }
                Resource::Memory(s)
            }
            (r, None) => r,
            (_, Some(_)) => return Err(CapError::SubrangeOnNonMemory),
        };
        // Capture the parent's identity before any mutation: the Granted
        // branch needs it after `insert_child`, and reading it now avoids
        // a second (fallible) lookup of a capability we already hold.
        let (parent_owner, parent_res) = (c.owner, c.resource);
        let child = self.insert_child(cap, target, actor, resource, rights, kind, policy)?;
        let child_cap = self.caps.get(child.0).expect("just inserted").clone();
        if matches!(kind, CapKind::Shared) {
            self.emit_gain(&child_cap);
        } else {
            // Granted (the only other kind past the entry validation).
            // Suspend the granter's capability and its hardware access.
            // The grant may take a core or transition target out from
            // under a cached fast-path validation; `tick()` below
            // bumps the generation.
            self.set_cap_active(cap, false);
            self.emit_loss(parent_owner, parent_res);
            if matches!(parent_res, Resource::Memory(_)) {
                self.effects.push(Effect::FlushTlb {
                    domain: parent_owner,
                });
            }
            self.emit_gain(&child_cap);
        }
        self.tick();
        self.trace.emit_engine(EventKind::CapOp {
            op: if matches!(kind, CapKind::Shared) {
                CapOpKind::Share
            } else {
                CapOpKind::Grant
            },
            actor: actor.0,
            subject: cap.0,
            aux: target.0,
        });
        Ok(child)
    }

    /// Inserts a child capability node under `parent`.
    ///
    /// Returns `NoSuchCap(parent)` instead of panicking if the parent is
    /// missing: like the revoke lineage walk, a dangling parent means the
    /// capability tree is corrupt, and the TCB must refuse the operation
    /// rather than abort the whole monitor. The parent is linked *before*
    /// the child node is created, so a refused insert adds no capability
    /// state (only the id allocator advances, and ids are never reused).
    #[allow(clippy::too_many_arguments)]
    fn insert_child(
        &mut self,
        parent: CapId,
        owner: DomainId,
        granter: DomainId,
        resource: Resource,
        rights: Rights,
        kind: CapKind,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        let id = CapId(self.ids.next());
        self.caps
            .get_mut(parent.0)
            .ok_or(CapError::NoSuchCap(parent))?
            .children
            .insert(id);
        let cap = Capability {
            id,
            owner,
            granter,
            resource,
            rights,
            kind,
            parent: Some(parent),
            children: BTreeSet::new(),
            policy,
            active: true,
        };
        self.index_insert(&cap);
        self.caps.insert(id.0, cap);
        let t = self.tick();
        self.created_at.insert(id.0, t);
        Ok(id)
    }

    /// Emits the effects that give `cap.owner` access to `cap.resource`.
    fn emit_gain(&mut self, cap: &Capability) {
        match cap.resource {
            Resource::Memory(region) => {
                self.effects.push(Effect::MapMem {
                    domain: cap.owner,
                    region,
                    rights: cap.rights,
                });
            }
            Resource::CpuCore(core) => {
                self.effects.push(Effect::AddCore {
                    domain: cap.owner,
                    core,
                });
            }
            Resource::Device(device) => {
                self.effects.push(Effect::AttachDevice {
                    device,
                    domain: cap.owner,
                });
            }
            Resource::Transition(_) => {}
            Resource::Interrupt(vector) => {
                self.effects.push(Effect::RouteIrq {
                    vector,
                    domain: cap.owner,
                });
            }
        }
    }

    /// Emits the effects that remove `owner`'s access to `resource`.
    fn emit_loss(&mut self, owner: DomainId, resource: Resource) {
        match resource {
            Resource::Memory(region) => {
                self.effects.push(Effect::UnmapMem {
                    domain: owner,
                    region,
                });
            }
            Resource::CpuCore(core) => {
                self.effects.push(Effect::RemoveCore {
                    domain: owner,
                    core,
                });
            }
            Resource::Device(device) => {
                self.effects.push(Effect::DetachDevice { device });
            }
            Resource::Transition(_) => {}
            Resource::Interrupt(vector) => {
                self.effects.push(Effect::UnrouteIrq { vector });
            }
        }
    }

    /// Revokes the subtree rooted at `cap` (inclusive), post-order, with
    /// clean-up effects. Iterative with an explicit stack; each node is
    /// visited exactly once, so this terminates regardless of domain-level
    /// sharing cycles.
    fn revoke_subtree(&mut self, cap: CapId) {
        // Any cached transition validation may now be stale.
        self.generation += 1;
        self.trace.emit_engine(EventKind::GenBump {
            gen: self.generation,
        });
        // Collect the subtree in DFS order.
        let mut order = Vec::new();
        let mut stack = vec![cap];
        while let Some(id) = stack.pop() {
            if let Some(c) = self.caps.get(id.0) {
                order.push(id);
                stack.extend(c.children.iter().copied());
            }
        }
        // Revoke leaves-first so parents reactivate only after their
        // granted children are gone. Each node emits a bounded handful
        // of effects; reserving the subtree size up front turns a
        // storm's O(log) reallocation cascade into one growth step.
        self.effects.reserve(order.len());
        for id in order.into_iter().rev() {
            self.revoke_single(id);
        }
    }

    /// Revokes one capability node (its children are already gone).
    fn revoke_single(&mut self, id: CapId) {
        let Some(c) = self.caps.remove(id.0) else {
            return;
        };
        // Compact the dead node's lineage facts into the packed side
        // table — the live table keeps no tombstone.
        self.revoked.push(RevokedRecord {
            cap: id,
            parent: c.parent,
            owner: c.owner,
            granter: c.granter,
            kind: c.kind,
            revoked_at: self.op_counter,
        });
        self.index_remove(&c);
        self.created_at.remove(id.0);
        let owner_alive = self
            .domains
            .get(c.owner.0)
            .map(|d| d.is_alive())
            .unwrap_or(false);
        if c.active && owner_alive {
            self.emit_loss(c.owner, c.resource);
        }
        // Clean-up contract.
        if let Resource::Memory(region) = c.resource {
            // Zero only when the revoked holder had exclusive data in the
            // region (granted or carved-from-grant); zeroing a shared
            // window would destroy the surviving holder's bytes.
            if c.policy.zero_memory && c.kind == CapKind::Granted {
                self.effects.push(Effect::ZeroMem { region });
            }
            if c.policy.flush_tlb && owner_alive {
                self.effects.push(Effect::FlushTlb { domain: c.owner });
            }
        }
        if c.policy.flush_cache && owner_alive {
            self.effects.push(Effect::FlushCache { domain: c.owner });
        }
        // Detach parent linkage and reactivate a granter suspended by a
        // grant, or a split parent whose pieces are all gone.
        if let Some(pid) = c.parent {
            let reactivate = if let Some(parent) = self.caps.get_mut(pid.0) {
                parent.children.remove(&id);
                let should = match c.kind {
                    CapKind::Granted => true,
                    CapKind::Carved => parent.children.is_empty(),
                    _ => false,
                };
                should && !parent.active
            } else {
                false
            };
            // Quarantine is sticky: a suspended transition capability into
            // a quarantined domain must never come back to life when its
            // suspending child goes away (audit I7).
            let reactivate = reactivate
                && !matches!(
                    self.caps.get(pid.0).map(|p| p.resource),
                    Some(Resource::Transition(t))
                        if self.domains.get(t.0).map(|d| d.is_quarantined()).unwrap_or(false)
                );
            if reactivate {
                self.set_cap_active(pid, true);
                if let Some(parent) = self.caps.get(pid.0) {
                    let palive = self
                        .domains
                        .get(parent.owner.0)
                        .map(|d| d.is_alive())
                        .unwrap_or(false);
                    if palive {
                        let parent = parent.clone();
                        self.emit_gain(&parent);
                    }
                }
            }
        }
    }

    /// Computes the seal-time measurement: a hash over the canonical
    /// encoding of the domain's configuration and recorded contents.
    fn measure_config(&self, domain: DomainId, policy: SealPolicy) -> tyche_crypto::Digest {
        let dom = self.domains.get(domain.0).expect("caller checked");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"tyche-domain-v1");
        bytes.extend_from_slice(&dom.entry.unwrap_or(0).to_le_bytes());
        bytes.push(policy.encode());
        let mut entries: Vec<(u8, u64, u64, u8, u8)> = self
            .caps_of(domain)
            .into_iter()
            .filter(|c| c.active)
            .map(|c| {
                let (a, b) = match c.resource {
                    Resource::Memory(r) => (r.start, r.end),
                    Resource::CpuCore(n) => (n as u64, 0),
                    Resource::Device(d) => (d as u64, 0),
                    Resource::Transition(t) => (t.0, 0),
                    Resource::Interrupt(v) => (v as u64, 0),
                };
                let kind = match c.kind {
                    CapKind::Root => 0u8,
                    CapKind::Shared => 1,
                    CapKind::Granted => 2,
                    CapKind::Carved => 3,
                };
                (c.resource.type_tag(), a, b, c.rights.0, kind)
            })
            .collect();
        entries.sort();
        bytes.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (tag, a, b, rights, kind) in entries {
            bytes.push(tag);
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
            bytes.push(rights);
            bytes.push(kind);
        }
        let mut contents = dom.content_measurements.clone();
        contents.sort();
        bytes.extend_from_slice(&(contents.len() as u64).to_le_bytes());
        for (s, e, d) in contents {
            bytes.extend_from_slice(&s.to_le_bytes());
            bytes.extend_from_slice(&e.to_le_bytes());
            bytes.extend_from_slice(d.as_bytes());
        }
        tyche_crypto::hash(&bytes)
    }
}
