//! Comparison baselines for the evaluation.
//!
//! The paper's claims are comparative: Tyche-enclaves vs **SGX** (§4.2),
//! in-process compartments vs **process isolation** (§2.2), and flat
//! trust domains vs the **hierarchical VM** trust explosion (§2.2).
//! Reproducing those comparisons needs faithful models of the baselines'
//! *restrictions* — this crate provides them:
//!
//! - [`sgx`]: an SGX-like enclave model with the constraints the paper
//!   contrasts against: enclaves live inside a host process's address
//!   space (so the enclave can read all host memory — implicit sharing),
//!   each occupies an exclusive virtual range (ELRANGE) limiting layout
//!   and count, EPC capacity is finite, and enclaves cannot nest;
//! - [`process`]: OS process isolation with the costs §2.2 cites —
//!   creation, context switches, and IPC — using the same
//!   `tyche_hw`-calibrated cycle constants as the monitor experiments;
//! - [`vmstack`]: the hierarchical-VM trust model, where software at
//!   depth `d` must trust every intermediate privileged layer, with
//!   TCB sizes to match.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod sgx;
pub mod vmstack;

pub use process::{ProcessIsolation, ProcessSim};
pub use sgx::{SgxError, SgxMachine};
pub use vmstack::VmStack;
