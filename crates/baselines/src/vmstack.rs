//! The hierarchical-VM trust model (§2.2).
//!
//! "Virtual machines duplicate hardware privilege levels and grant full
//! control to virtual-privileged code over virtual-user software. This
//! creates a rigid trust hierarchy that forces software to blindly trust
//! all intermediate privileged levels, and leads to an uncontrolled
//! explosion of the TCB."
//!
//! The model: a stack of nested virtualization layers, each with a code
//! size. Software at depth `d` must trust every layer `0..d` (each can
//! read and modify everything above it). Tyche's flat domains, by
//! contrast, put only the monitor on the trust path regardless of
//! nesting depth. Experiment C9 plots the two curves.

/// One layer of the virtualization stack.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Human-readable name ("L0 hypervisor", "L1 guest kernel", ...).
    pub name: String,
    /// Lines of code — the TCB contribution.
    pub loc: u64,
}

/// A nested-virtualization deployment.
#[derive(Clone, Debug, Default)]
pub struct VmStack {
    layers: Vec<Layer>,
}

/// Representative code sizes (order-of-magnitude, from the papers the
/// HotOS text cites for "millions of lines").
pub mod loc {
    /// A commodity hypervisor + host kernel (KVM/QEMU-class).
    pub const HYPERVISOR: u64 = 2_000_000;
    /// A monolithic guest kernel (Linux-class).
    pub const GUEST_KERNEL: u64 = 20_000_000;
    /// A nested hypervisor layer.
    pub const NESTED_HYPERVISOR: u64 = 1_000_000;
    /// An isolation monitor (the paper's target: "<10K LOC").
    pub const MONITOR: u64 = 10_000;
}

impl VmStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a layer below the software under consideration.
    pub fn push(&mut self, name: &str, loc: u64) {
        self.layers.push(Layer {
            name: name.to_string(),
            loc,
        });
    }

    /// Builds the typical depth-`d` nested deployment: hypervisor, then
    /// alternating guest kernels and nested hypervisors.
    pub fn typical(depth: usize) -> Self {
        let mut s = VmStack::new();
        s.push("L0 hypervisor", loc::HYPERVISOR);
        for i in 0..depth {
            if i % 2 == 0 {
                s.push(&format!("L{} guest kernel", i + 1), loc::GUEST_KERNEL);
            } else {
                s.push(
                    &format!("L{} nested hypervisor", i + 1),
                    loc::NESTED_HYPERVISOR,
                );
            }
        }
        s
    }

    /// TCB of software at the top of this stack: every layer below it.
    pub fn tcb_loc(&self) -> u64 {
        self.layers.iter().map(|l| l.loc).sum()
    }

    /// Number of independently-trusted components on the trust path.
    pub fn trusted_components(&self) -> usize {
        self.layers.len()
    }

    /// The same workload's TCB under an isolation monitor: the monitor
    /// alone, regardless of how deeply domains nest (§3.5).
    pub fn monitor_tcb_loc(_depth: usize) -> u64 {
        loc::MONITOR
    }

    /// Can layer `i` read memory of software at layer `j`? In the
    /// hierarchy, any lower (more privileged) layer reads every layer
    /// above it.
    pub fn layer_can_read(&self, i: usize, j: usize) -> bool {
        i <= j && i < self.layers.len() && j <= self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcb_grows_with_depth() {
        let d1 = VmStack::typical(1).tcb_loc();
        let d3 = VmStack::typical(3).tcb_loc();
        let d5 = VmStack::typical(5).tcb_loc();
        assert!(d1 < d3 && d3 < d5, "monotone TCB explosion");
        assert!(d5 > 40_000_000, "tens of millions of lines at depth 5");
    }

    #[test]
    fn monitor_tcb_flat() {
        for d in 0..8 {
            assert_eq!(VmStack::monitor_tcb_loc(d), 10_000);
        }
        // The ratio the paper gestures at: orders of magnitude.
        assert!(VmStack::typical(3).tcb_loc() / VmStack::monitor_tcb_loc(3) > 1000);
    }

    #[test]
    fn privileged_layers_read_upward() {
        let s = VmStack::typical(3);
        assert!(s.layer_can_read(0, 3), "L0 reads everything");
        assert!(s.layer_can_read(1, 2));
        assert!(!s.layer_can_read(3, 1), "upper layers cannot read down");
    }

    #[test]
    fn component_count() {
        assert_eq!(VmStack::typical(0).trusted_components(), 1);
        assert_eq!(VmStack::typical(4).trusted_components(), 5);
    }
}
