//! An SGX-like enclave model, faithful to the restrictions §4.2
//! contrasts with:
//!
//! 1. an enclave lives *inside* a host process's virtual address space,
//!    and enclave code can access all of the host's memory — untrusted
//!    memory is implicitly reachable, which is how accidental leaks
//!    happen (enclave writes secrets through a stray host pointer);
//! 2. each enclave occupies an exclusive virtual range (ELRANGE) in its
//!    process — two enclaves in one process cannot overlap, and a given
//!    address layout can exist only once per process;
//! 3. enclave pages come from a finite EPC (enclave page cache);
//! 4. enclaves cannot create enclaves (no nesting): `ECREATE` is a
//!    privileged host operation, unavailable inside an enclave.

use std::collections::HashMap;

/// Why an SGX operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SgxError {
    /// The requested ELRANGE overlaps an existing enclave in the process.
    RangeOverlap,
    /// The EPC has no room for the enclave's pages.
    EpcExhausted,
    /// `ECREATE` invoked from inside an enclave: nesting is impossible.
    NestingUnsupported,
    /// Unknown enclave / process id.
    NotFound,
}

impl core::fmt::Display for SgxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SgxError::RangeOverlap => f.write_str("ELRANGE overlaps an existing enclave"),
            SgxError::EpcExhausted => f.write_str("EPC exhausted"),
            SgxError::NestingUnsupported => f.write_str("enclaves cannot create enclaves"),
            SgxError::NotFound => f.write_str("no such enclave/process"),
        }
    }
}

impl std::error::Error for SgxError {}

/// An enclave id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EnclaveId(pub u64);

/// A host process id in the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HostPid(pub u64);

struct SgxEnclave {
    host: HostPid,
    /// ELRANGE `[start, end)` in the host's virtual space.
    range: (u64, u64),
    epc_pages: u64,
}

/// The SGX machine model: EPC accounting plus per-process ELRANGEs.
pub struct SgxMachine {
    /// Total EPC pages (e.g. 23k pages ≈ 92 MiB usable on early parts).
    pub epc_capacity: u64,
    epc_used: u64,
    enclaves: HashMap<EnclaveId, SgxEnclave>,
    next_id: u64,
    /// Cycle cost of an EENTER/EEXIT round trip (published measurements
    /// put it around 8–14k cycles; we use a mid value for experiments).
    pub eenter_roundtrip_cycles: u64,
}

impl SgxMachine {
    /// Creates a machine with `epc_capacity` EPC pages.
    pub fn new(epc_capacity: u64) -> Self {
        SgxMachine {
            epc_capacity,
            epc_used: 0,
            enclaves: HashMap::new(),
            next_id: 1,
            eenter_roundtrip_cycles: 10_000,
        }
    }

    /// `ECREATE` from the host: builds an enclave at `range` in `host`'s
    /// address space with `pages` EPC pages.
    ///
    /// `from_enclave` models the caller's context: when set, the creation
    /// is attempted from inside an enclave and fails — the restriction
    /// that makes nesting impossible.
    pub fn ecreate(
        &mut self,
        host: HostPid,
        range: (u64, u64),
        pages: u64,
        from_enclave: bool,
    ) -> Result<EnclaveId, SgxError> {
        if from_enclave {
            return Err(SgxError::NestingUnsupported);
        }
        // ELRANGE exclusivity within the host process.
        for e in self.enclaves.values() {
            if e.host == host && range.0 < e.range.1 && e.range.0 < range.1 {
                return Err(SgxError::RangeOverlap);
            }
        }
        if self.epc_used + pages > self.epc_capacity {
            return Err(SgxError::EpcExhausted);
        }
        self.epc_used += pages;
        let id = EnclaveId(self.next_id);
        self.next_id += 1;
        self.enclaves.insert(
            id,
            SgxEnclave {
                host,
                range,
                epc_pages: pages,
            },
        );
        Ok(id)
    }

    /// Destroys an enclave, freeing its EPC pages.
    pub fn edestroy(&mut self, id: EnclaveId) -> Result<(), SgxError> {
        let e = self.enclaves.remove(&id).ok_or(SgxError::NotFound)?;
        self.epc_used -= e.epc_pages;
        Ok(())
    }

    /// Can enclave code at `id` read host-process memory at `addr`?
    ///
    /// In SGX the answer is **yes for all host memory** — the enclave
    /// shares the process address space. This is restriction 1: nothing
    /// forces sharing to be explicit.
    pub fn enclave_can_read_host(&self, id: EnclaveId, _addr: u64) -> Result<bool, SgxError> {
        self.enclaves
            .get(&id)
            .map(|_| true)
            .ok_or(SgxError::NotFound)
    }

    /// Can the *host* read enclave memory? No — the one direction SGX
    /// does protect.
    pub fn host_can_read_enclave(&self, id: EnclaveId, addr: u64) -> Result<bool, SgxError> {
        let e = self.enclaves.get(&id).ok_or(SgxError::NotFound)?;
        Ok(!(e.range.0 <= addr && addr < e.range.1))
    }

    /// EPC pages currently in use.
    pub fn epc_used(&self) -> u64 {
        self.epc_used
    }

    /// Number of live enclaves.
    pub fn enclave_count(&self) -> usize {
        self.enclaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_host_access() {
        let mut sgx = SgxMachine::new(1000);
        let e = sgx
            .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
            .unwrap();
        // The enclave reads arbitrary host memory — implicit sharing.
        assert!(sgx.enclave_can_read_host(e, 0xdead_0000).unwrap());
        // The host cannot read enclave memory, but can read outside it.
        assert!(!sgx.host_can_read_enclave(e, 0x10_0000).unwrap());
        assert!(sgx.host_can_read_enclave(e, 0x30_0000).unwrap());
    }

    #[test]
    fn elrange_exclusive_per_process() {
        let mut sgx = SgxMachine::new(1000);
        sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
            .unwrap();
        // Same range in the same process: impossible.
        assert_eq!(
            sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false),
            Err(SgxError::RangeOverlap)
        );
        // Overlapping range: impossible.
        assert_eq!(
            sgx.ecreate(HostPid(1), (0x18_0000, 0x28_0000), 16, false),
            Err(SgxError::RangeOverlap)
        );
        // Same range in a *different* process: fine.
        assert!(sgx
            .ecreate(HostPid(2), (0x10_0000, 0x20_0000), 16, false)
            .is_ok());
    }

    #[test]
    fn no_nesting() {
        let mut sgx = SgxMachine::new(1000);
        assert_eq!(
            sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, true),
            Err(SgxError::NestingUnsupported)
        );
    }

    #[test]
    fn epc_accounting() {
        let mut sgx = SgxMachine::new(100);
        let a = sgx
            .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 60, false)
            .unwrap();
        assert_eq!(
            sgx.ecreate(HostPid(2), (0x10_0000, 0x20_0000), 60, false),
            Err(SgxError::EpcExhausted)
        );
        sgx.edestroy(a).unwrap();
        assert_eq!(sgx.epc_used(), 0);
        assert!(sgx
            .ecreate(HostPid(2), (0x10_0000, 0x20_0000), 60, false)
            .is_ok());
    }
}
