//! The process-isolation baseline (§2.2).
//!
//! "Developers must either extend their trust to thousands of unverified
//! libraries or isolate them in separate processes, with all associated
//! overheads in creation, synchronization, and management." This module
//! models that alternative: putting an untrusted library in its own OS
//! process, talking to it over IPC. The cycle constants come from the
//! same `tyche_hw::cycles::CostModel` calibration the monitor
//! experiments use, so comparisons are apples-to-apples within the
//! simulation.

/// Cost parameters for the process baseline (mirrors
/// `tyche_hw::cycles::CostModel` fields; duplicated here so this crate
/// stays dependency-light).
#[derive(Clone, Copy, Debug)]
pub struct ProcessCosts {
    /// fork+exec-lite.
    pub create: u64,
    /// One scheduler context switch.
    pub context_switch: u64,
    /// One IPC round trip (request + response over a pipe).
    pub ipc_roundtrip: u64,
    /// Tearing a process down.
    pub teardown: u64,
}

impl Default for ProcessCosts {
    fn default() -> Self {
        // Matches CostModel::default_model(): process_create = 250k,
        // context_switch = 3k, ipc_roundtrip = 8k.
        ProcessCosts {
            create: 250_000,
            context_switch: 3_000,
            ipc_roundtrip: 8_000,
            teardown: 50_000,
        }
    }
}

/// Strategy marker used by benches to label the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessIsolation {
    /// A library isolated in a separate OS process.
    SeparateProcess,
}

/// A simulated library-in-a-process deployment.
pub struct ProcessSim {
    costs: ProcessCosts,
    /// Accumulated simulated cycles.
    pub cycles: u64,
    /// Whether the worker process is alive.
    alive: bool,
    /// Worker private memory (the isolated library's state).
    worker_mem: Vec<u8>,
}

impl ProcessSim {
    /// "Forks" the library into its own process.
    pub fn create(costs: ProcessCosts, worker_mem_bytes: usize) -> Self {
        let mut s = ProcessSim {
            costs,
            cycles: 0,
            alive: true,
            worker_mem: vec![0; worker_mem_bytes],
        };
        s.cycles += s.costs.create;
        s
    }

    /// One call into the library: IPC round trip + two context switches.
    /// `work` runs against the worker's private memory.
    ///
    /// # Panics
    ///
    /// Panics if the worker was torn down.
    pub fn call<F: FnOnce(&mut [u8])>(&mut self, request: &[u8], work: F) -> Vec<u8> {
        assert!(self.alive, "worker is dead");
        self.cycles += self.costs.ipc_roundtrip + 2 * self.costs.context_switch;
        // Copy semantics: IPC marshals the request into the worker.
        let n = request.len().min(self.worker_mem.len());
        self.worker_mem[..n].copy_from_slice(&request[..n]);
        work(&mut self.worker_mem);
        self.worker_mem[..n].to_vec()
    }

    /// Host cannot touch worker memory directly — that is the isolation
    /// property bought with all these cycles. (Model: no accessor exists;
    /// this method documents the check used in equivalence tests.)
    pub fn host_can_read_worker(&self) -> bool {
        false
    }

    /// Tears the worker down.
    pub fn destroy(mut self) -> u64 {
        self.alive = false;
        self.cycles += self.costs.teardown;
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_costs_accumulate() {
        let costs = ProcessCosts::default();
        let mut p = ProcessSim::create(costs, 4096);
        assert_eq!(p.cycles, costs.create);
        p.call(b"req", |mem| mem[0] ^= 1);
        assert_eq!(
            p.cycles,
            costs.create + costs.ipc_roundtrip + 2 * costs.context_switch
        );
        let total = p.destroy();
        assert_eq!(
            total,
            costs.create + costs.ipc_roundtrip + 2 * costs.context_switch + costs.teardown
        );
    }

    #[test]
    fn call_marshals_request() {
        let mut p = ProcessSim::create(ProcessCosts::default(), 16);
        let out = p.call(b"abc", |mem| {
            for b in mem.iter_mut() {
                *b = b.wrapping_add(1);
            }
        });
        assert_eq!(&out, b"bcd");
    }

    #[test]
    fn isolation_direction() {
        let p = ProcessSim::create(ProcessCosts::default(), 16);
        assert!(!p.host_can_read_worker());
    }
}
